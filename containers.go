package qsense

import (
	"context"
	"sync"
	"sync/atomic"

	"qsense/internal/bst"
	"qsense/internal/hashmap"
	"qsense/internal/list"
	"qsense/internal/mem"
	"qsense/internal/queue"
	"qsense/internal/reclaim"
	"qsense/internal/skiplist"
	"qsense/internal/stack"
)

// SetHandle is a goroutine's leased view of a concurrent sorted set. All
// set-like containers (Set, SkipSet, TreeSet, HashSet) hand out SetHandles
// from Acquire. A handle must be used by one goroutine at a time and
// Released exactly once, when its goroutine is done with the container.
//
// Most structures reserve a few extreme int64 values as internal sentinel
// keys (math.MinInt64 and math.MaxInt64 for Set/SkipSet, the top three
// values for TreeSet; HashSet reserves none). Reserved keys are out of the
// container's domain:
// Contains and Delete report them absent and Insert rejects them with
// false — they are never stored and never corrupt the structure.
type SetHandle interface {
	// Contains reports whether key is in the set.
	Contains(key int64) bool
	// Insert adds key, reporting false if it was already present.
	Insert(key int64) bool
	// Delete removes key, reporting false if it was absent.
	Delete(key int64) bool
	// Release returns the handle's reclamation slot to the container so
	// another goroutine can Acquire it. The handle must not be used
	// afterwards. Extra calls, and calls on handles from the deprecated
	// positional Handle(w), are no-ops.
	Release()
}

// setOps is the scheme-agnostic operation surface the structure packages
// implement; the containers wrap it with lease bookkeeping.
type setOps interface {
	Contains(key int64) bool
	Insert(key int64) bool
	Delete(key int64) bool
}

// leasedSet pairs a structure handle with its guard lease. The pinned flag
// marks a positional handle whose Release is a no-op, as in
// QueueHandle/StackHandle and Guard.
type leasedSet struct {
	setOps
	d        reclaim.Domain
	g        reclaim.Guard
	pinned   bool
	released atomic.Bool
}

// Release implements SetHandle. The once-flag matters: the slot may be
// re-leased to another goroutine the moment it is released, so a second
// Release must not touch it.
func (h *leasedSet) Release() {
	if h.pinned || !h.released.CompareAndSwap(false, true) {
		return
	}
	h.d.Release(h.g)
}

// leaseCore carries the domain plumbing shared by every leased container:
// guard leasing, the per-slot structure-handle cache, stats and close. It
// is generic over the structure operation surface O, so the set containers
// (setOps) and the value-carrying map containers (mapOps) run on one
// machinery; the container types add only their handle wrapping.
type leaseCore[O comparable] struct {
	d     reclaim.Domain
	arena int
	mk    func(g reclaim.Guard, seed uint64) O

	// handles caches one structure handle per guard slot, built on the
	// slot's first lease and reused by every later tenant, so the Acquire
	// hot path allocates no structure state (for SkipSet that includes
	// its preds/succs buffers). Slot w's guard is a stable object, so the
	// cached handle's guard binding stays correct across tenants; access
	// to an entry is exclusive to the slot's current owner, ordered by
	// the slot pool's lease/release atomics. The table is segmented like
	// the guard arena itself, so it covers slots minted by elastic
	// growth. Under a sharded domain the key is still the one
	// reclaim.SlotIndex word: the (shard, local slot) pair interleaved as
	// local*Shards+shard, dense in [0, HardMaxWorkers) whatever the shard
	// count, so the cache needs no shard awareness.
	handles *reclaim.SlotTable[O]
}

func newLeaseCore[O comparable](opts Options, hps int, free func(Ref), era reclaim.EraSource, mk func(g reclaim.Guard, seed uint64) O) (*leaseCore[O], error) {
	d, err := newDomain(withHPs(opts, hps), func(r mem.Ref) { free(Ref(r)) }, era)
	if err != nil {
		return nil, err
	}
	return &leaseCore[O]{
		d: d.d, arena: opts.arena(), mk: mk,
		handles: reclaim.NewSlotTable[O](opts.arena(), opts.HardMaxWorkers),
	}, nil
}

// acquire leases a guard and returns the slot's structure handle with it.
func (c *leaseCore[O]) acquire() (O, reclaim.Guard, error) {
	g, err := c.d.Acquire()
	if err != nil {
		var zero O
		return zero, nil, err
	}
	return c.structureFor(g), g, nil
}

// acquireWait is acquire that blocks while every slot is leased, woken by
// the next Release; ctx cancellation unblocks it.
func (c *leaseCore[O]) acquireWait(ctx context.Context) (O, reclaim.Guard, error) {
	g, err := c.d.AcquireWait(ctx)
	if err != nil {
		var zero O
		return zero, nil, err
	}
	return c.structureFor(g), g, nil
}

// structureFor returns slot g's cached structure handle, building it on the
// slot's first lease. Seeds derive from the slot index (stable, distinct),
// exactly as the positional path always did.
func (c *leaseCore[O]) structureFor(g reclaim.Guard) O {
	w := reclaim.SlotIndex(g)
	p := c.handles.Get(w)
	var zero O
	if *p == zero {
		*p = c.mk(g, uint64(w)+1)
	}
	return *p
}

// Stats returns the reclamation counters.
func (c *leaseCore[O]) Stats() Stats { return fromReclaimStats(c.d.Stats()) }

// Close reclaims all pending memory and stops background machinery. Call
// only after all workers have stopped.
func (c *leaseCore[O]) Close() { c.d.Close() }

// setCore is leaseCore specialized to the set containers, adding the
// SetHandle wrapping and the deprecated positional-handle shim.
type setCore struct {
	*leaseCore[setOps]

	mu     sync.Mutex
	legacy []SetHandle // lazily built positional handles (pinned slots)
}

// Acquire leases a handle for the calling goroutine, growing the guard
// arena when all slots are in use. It returns ErrNoSlots only at an
// Options.HardMaxWorkers cap; AcquireWait blocks there instead.
func (c *setCore) Acquire() (SetHandle, error) {
	ops, g, err := c.acquire()
	if err != nil {
		return nil, err
	}
	return &leasedSet{setOps: ops, d: c.d, g: g}, nil
}

// AcquireWait is Acquire that blocks while every slot is leased, woken by
// the next Release. It returns ctx.Err() if ctx is done before a slot
// frees; with context.Background() it waits indefinitely.
func (c *setCore) AcquireWait(ctx context.Context) (SetHandle, error) {
	ops, g, err := c.acquireWait(ctx)
	if err != nil {
		return nil, err
	}
	return &leasedSet{setOps: ops, d: c.d, g: g}, nil
}

// Handle returns worker w's handle, pinning slot w permanently: it never
// returns to the Acquire pool. The positional range is the INITIAL arena
// only — 0 <= w < Options.Workers when set, else MaxWorkers (clamped to
// any smaller HardMaxWorkers); slots minted by elastic growth belong to
// Acquire. Out-of-range w panics.
//
// Deprecated: positional handles exist for fixed-worker callers that need
// deterministic worker↔slot assignment. New code should use Acquire and
// Release.
func (c *setCore) Handle(w int) SetHandle {
	if w < 0 || w >= c.arena {
		panic("qsense: positional Handle(w) outside the initial arena — set Options.Workers to size the positional range")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.legacy == nil {
		c.legacy = make([]SetHandle, c.arena)
	}
	if c.legacy[w] == nil {
		c.legacy[w] = &leasedSet{setOps: c.structureFor(c.d.Guard(w)), d: c.d, pinned: true}
	}
	return c.legacy[w]
}

func newSetCore(opts Options, hps int, free func(Ref), era reclaim.EraSource, mk func(g reclaim.Guard, seed uint64) setOps) (*setCore, error) {
	lc, err := newLeaseCore[setOps](opts, hps, free, era, mk)
	if err != nil {
		return nil, err
	}
	return &setCore{leaseCore: lc}, nil
}

func withHPs(opts Options, hps int) Options {
	if opts.HPs < hps {
		opts.HPs = hps
	}
	return opts
}

// Set is a lock-free sorted set backed by the Harris–Michael linked list —
// right for small key ranges and cheap iteration-free membership.
type Set struct {
	*setCore
	l *list.List
}

// NewSet builds a linked-list set wired to a reclamation domain.
func NewSet(opts Options) (*Set, error) {
	l := list.New(list.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, list.HPs, func(r Ref) { l.FreeNode(toMem(r)) }, l.Pool(),
		func(g reclaim.Guard, _ uint64) setOps { return l.NewHandle(g) })
	if err != nil {
		return nil, err
	}
	return &Set{setCore: core, l: l}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *Set) Len() int { return s.l.Len() }

// SkipSet is a lock-free sorted set backed by the Fraser skip list —
// logarithmic operations over large key ranges.
type SkipSet struct {
	*setCore
	s *skiplist.SkipList
}

// NewSkipSet builds a skip-list set wired to a reclamation domain.
func NewSkipSet(opts Options) (*SkipSet, error) {
	sl := skiplist.New(skiplist.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, skiplist.HPsFor(sl.Levels()), func(r Ref) { sl.FreeNode(toMem(r)) }, sl.Pool(),
		func(g reclaim.Guard, seed uint64) setOps { return sl.NewHandle(g, seed*0x9E3779B9+1) })
	if err != nil {
		return nil, err
	}
	return &SkipSet{setCore: core, s: sl}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *SkipSet) Len() int { return s.s.Len() }

// MapHandle is a goroutine's leased view of a concurrent ordered key→value
// map. Like SetHandle, it must be used by one goroutine at a time and
// Released exactly once when its goroutine is done with the container.
//
// math.MinInt64 and math.MaxInt64 are the skip list's sentinel keys and
// out of the map's domain: Get and Delete report them absent, Put rejects
// them with false without storing anything. Callers exposing the map to
// untrusted key sources (as qsense-kvd does) should reject them up front
// for a clearer error.
type MapHandle interface {
	// Get returns a copy of key's value bytes.
	Get(key int64) (val []byte, ok bool)
	// GetAppend appends key's value to dst and returns the extended
	// slice — the allocation-free read path.
	GetAppend(key int64, dst []byte) ([]byte, bool)
	// Put sets key's value to a copy of val: true if key was newly
	// inserted, false if an existing key's value was replaced (the
	// displaced value is retired through the map's reclamation domain).
	// Values up to 7 bytes are stored inline in the node's value word;
	// longer values spill to a reclaimed value node.
	Put(key int64, val []byte) bool
	// PutUint64 sets key's value to val's minimal little-endian
	// encoding — the uint64 fast path (values below 2^56 never
	// allocate). It interoperates with Put/Get of the same bytes.
	PutUint64(key int64, val uint64) bool
	// GetUint64 returns key's value decoded as a little-endian uint64
	// (the first 8 bytes, for longer values).
	GetUint64(key int64) (uint64, bool)
	// Delete removes key, reporting false if it was absent. The removed
	// value is retired through the domain alongside the node.
	Delete(key int64) bool
	// Release returns the handle's reclamation slot to the container so
	// another goroutine can Acquire it. The handle must not be used
	// afterwards; extra calls are no-ops.
	Release()
}

// mapOps is the operation surface of a value-carrying structure; the map
// containers wrap it with lease bookkeeping, as setOps for the sets.
// The method names are the structure handle's (skiplist.Handle): Put/Get
// move uint64 words, PutBytes/GetAppend move byte payloads.
type mapOps interface {
	Get(key int64) (uint64, bool)
	Put(key int64, val uint64) bool
	GetAppend(key int64, dst []byte) ([]byte, bool)
	PutBytes(key int64, val []byte) bool
	Delete(key int64) bool
}

// leasedMap pairs a map structure handle with its guard lease and adapts
// the structure's method names to the public MapHandle surface.
type leasedMap struct {
	ops      mapOps
	d        reclaim.Domain
	g        reclaim.Guard
	released atomic.Bool
}

func (h *leasedMap) Get(key int64) ([]byte, bool) { return h.ops.GetAppend(key, nil) }
func (h *leasedMap) GetAppend(key int64, dst []byte) ([]byte, bool) {
	return h.ops.GetAppend(key, dst)
}
func (h *leasedMap) Put(key int64, val []byte) bool        { return h.ops.PutBytes(key, val) }
func (h *leasedMap) PutUint64(key int64, val uint64) bool  { return h.ops.Put(key, val) }
func (h *leasedMap) GetUint64(key int64) (uint64, bool)    { return h.ops.Get(key) }
func (h *leasedMap) Delete(key int64) bool                 { return h.ops.Delete(key) }

// Release implements MapHandle (see leasedSet.Release for the once-flag
// rationale).
func (h *leasedMap) Release() {
	if !h.released.CompareAndSwap(false, true) {
		return
	}
	h.d.Release(h.g)
}

// mapCore is leaseCore specialized to the map containers. The map API is
// lease-only by design: it postdates the fixed-worker model, so there is no
// positional Handle(w) shim.
type mapCore struct {
	*leaseCore[mapOps]
}

// Acquire leases a handle for the calling goroutine, growing the guard
// arena when all slots are in use. It returns ErrNoSlots only at an
// Options.HardMaxWorkers cap; AcquireWait blocks there instead.
func (c *mapCore) Acquire() (MapHandle, error) {
	ops, g, err := c.acquire()
	if err != nil {
		return nil, err
	}
	return &leasedMap{ops: ops, d: c.d, g: g}, nil
}

// AcquireWait is Acquire that blocks while every slot is leased, woken by
// the next Release. It returns ctx.Err() if ctx is done before a slot
// frees; with context.Background() it waits indefinitely.
func (c *mapCore) AcquireWait(ctx context.Context) (MapHandle, error) {
	ops, g, err := c.acquireWait(ctx)
	if err != nil {
		return nil, err
	}
	return &leasedMap{ops: ops, d: c.d, g: g}, nil
}

// SkipMap is a lock-free sorted key→value map: the Fraser skip list of
// SkipSet with a per-node value word. It is the structure qsense-kvd
// serves over TCP — a goroutine-per-connection server Acquires one handle
// per connection (AcquireWait under a HardMaxWorkers admission cap) and
// the guard arena grows and parks with the connection count.
type SkipMap struct {
	*mapCore
	s *skiplist.SkipList
}

// NewSkipMap builds a skip-list map wired to a reclamation domain.
func NewSkipMap(opts Options) (*SkipMap, error) {
	sl := skiplist.New(skiplist.Config{MaxSlots: opts.MaxNodes})
	lc, err := newLeaseCore[mapOps](opts, skiplist.HPsFor(sl.Levels()), func(r Ref) { sl.FreeNode(toMem(r)) }, sl.Pool(),
		func(g reclaim.Guard, seed uint64) mapOps { return sl.NewHandle(g, seed*0x9E3779B9+1) })
	if err != nil {
		return nil, err
	}
	return &SkipMap{mapCore: &mapCore{leaseCore: lc}, s: sl}, nil
}

// Len counts entries; only meaningful while no workers are active.
func (m *SkipMap) Len() int { return m.s.Len() }

// ValueStats is a snapshot of a SkipMap's value-arena gauges: how many
// payload bytes are live (inline + spilled), how many spilled value nodes
// exist, and how the retire traffic splits between value nodes and
// structural (link-bearing) nodes. Under update-heavy workloads
// ValueRetires dominates StructRetires — the regime the reclamation
// schemes are benchmarked in.
type ValueStats struct {
	Bytes         int64  // live value payload bytes
	Spilled       int64  // live spilled (>7 byte) value nodes
	ValueRetires  uint64 // value nodes retired through the domain
	StructRetires uint64 // structural nodes retired through the domain
}

// Values returns the map's value-arena gauges. Gauges are maintained with
// racy atomics and may be transiently off by in-flight operations.
func (m *SkipMap) Values() ValueStats {
	vs := m.s.ValueStats()
	return ValueStats{
		Bytes:         vs.Bytes,
		Spilled:       vs.Spilled,
		ValueRetires:  vs.ValueRetires,
		StructRetires: vs.StructRetires,
	}
}

// TreeSet is a lock-free sorted set backed by the Natarajan–Mittal
// external binary search tree — the paper's third workload.
type TreeSet struct {
	*setCore
	t *bst.Tree
}

// NewTreeSet builds a BST set wired to a reclamation domain.
func NewTreeSet(opts Options) (*TreeSet, error) {
	tr := bst.New(bst.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, bst.HPs, func(r Ref) { tr.FreeNode(toMem(r)) }, tr.Pool(),
		func(g reclaim.Guard, _ uint64) setOps { return tr.NewHandle(g) })
	if err != nil {
		return nil, err
	}
	return &TreeSet{setCore: core, t: tr}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *TreeSet) Len() int { return s.t.Len() }

// HashSet is a lock-free hash set backed by Michael's hash table (split
// ordered bucket chains) — constant-time membership.
type HashSet struct {
	*setCore
	m *hashmap.Map
}

// NewHashSet builds a hash set wired to a reclamation domain.
func NewHashSet(opts Options) (*HashSet, error) {
	m := hashmap.New(hashmap.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, hashmap.HPs, func(r Ref) { m.FreeNode(toMem(r)) }, m.Pool(),
		func(g reclaim.Guard, _ uint64) setOps { return m.NewHandle(g) })
	if err != nil {
		return nil, err
	}
	return &HashSet{setCore: core, m: m}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *HashSet) Len() int { return s.m.Len() }

// Queue is a lock-free FIFO queue (Michael–Scott) of uint64 values.
type Queue struct {
	q *queue.Queue
	d reclaim.Domain

	mu      sync.Mutex
	handles *reclaim.SlotTable[*queue.Handle] // per-slot structure handles (see setCore.handles)
}

// NewQueue builds a queue wired to a reclamation domain.
func NewQueue(opts Options) (*Queue, error) {
	q := queue.New(queue.Config{MaxSlots: opts.MaxNodes})
	d, err := newDomain(withHPs(opts, queue.HPs), q.FreeNode, q.Pool())
	if err != nil {
		return nil, err
	}
	return &Queue{q: q, d: d.d, handles: reclaim.NewSlotTable[*queue.Handle](opts.arena(), opts.HardMaxWorkers)}, nil
}

// QueueHandle is a goroutine's leased view of a Queue. A handle must be
// used by one goroutine at a time and Released when done.
type QueueHandle struct {
	h        *queue.Handle
	d        reclaim.Domain
	g        reclaim.Guard
	released *atomic.Bool // nil for pinned (positional) handles
}

// Enqueue appends v at the tail.
func (h QueueHandle) Enqueue(v uint64) { h.h.Enqueue(v) }

// Dequeue removes and returns the oldest value; ok=false when empty.
func (h QueueHandle) Dequeue() (v uint64, ok bool) { return h.h.Dequeue() }

// Release returns the handle's reclamation slot to the queue. The handle
// must not be used afterwards; extra calls are no-ops.
func (h QueueHandle) Release() {
	if h.released == nil || !h.released.CompareAndSwap(false, true) {
		return
	}
	h.d.Release(h.g)
}

// Acquire leases a handle for the calling goroutine.
func (q *Queue) Acquire() (QueueHandle, error) {
	g, err := q.d.Acquire()
	if err != nil {
		return QueueHandle{}, err
	}
	return QueueHandle{h: q.structureFor(g), d: q.d, g: g, released: new(atomic.Bool)}, nil
}

// AcquireWait is Acquire that blocks while every slot is leased; it returns
// ctx.Err() if ctx is done before a slot frees.
func (q *Queue) AcquireWait(ctx context.Context) (QueueHandle, error) {
	g, err := q.d.AcquireWait(ctx)
	if err != nil {
		return QueueHandle{}, err
	}
	return QueueHandle{h: q.structureFor(g), d: q.d, g: g, released: new(atomic.Bool)}, nil
}

// structureFor returns slot g's cached queue handle (slot-owner exclusive;
// see setCore.handles for the ordering argument).
func (q *Queue) structureFor(g reclaim.Guard) *queue.Handle {
	p := q.handles.Get(reclaim.SlotIndex(g))
	if *p == nil {
		*p = q.q.NewHandle(g)
	}
	return *p
}

// Handle returns worker w's handle, pinning slot w permanently. w must lie
// in the initial arena (see setCore.Handle); out-of-range w panics.
//
// Deprecated: use Acquire and Release.
func (q *Queue) Handle(w int) QueueHandle {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueHandle{h: q.structureFor(q.d.Guard(w)), d: q.d}
}

// Stats returns the reclamation counters.
func (q *Queue) Stats() Stats { return fromReclaimStats(q.d.Stats()) }

// Len counts elements; only meaningful while no workers are active.
func (q *Queue) Len() int { return q.q.Len() }

// Close reclaims pending memory; call after all workers stopped.
func (q *Queue) Close() { q.d.Close() }

// Stack is a lock-free LIFO stack (Treiber) of uint64 values.
type Stack struct {
	s *stack.Stack
	d reclaim.Domain

	mu      sync.Mutex
	handles *reclaim.SlotTable[*stack.Handle] // per-slot structure handles (see setCore.handles)
}

// NewStack builds a stack wired to a reclamation domain.
func NewStack(opts Options) (*Stack, error) {
	s := stack.New(stack.Config{MaxSlots: opts.MaxNodes})
	d, err := newDomain(withHPs(opts, stack.HPs), s.FreeNode, s.Pool())
	if err != nil {
		return nil, err
	}
	return &Stack{s: s, d: d.d, handles: reclaim.NewSlotTable[*stack.Handle](opts.arena(), opts.HardMaxWorkers)}, nil
}

// StackHandle is a goroutine's leased view of a Stack. A handle must be
// used by one goroutine at a time and Released when done.
type StackHandle struct {
	h        *stack.Handle
	d        reclaim.Domain
	g        reclaim.Guard
	released *atomic.Bool // nil for pinned (positional) handles
}

// Push adds v on top.
func (h StackHandle) Push(v uint64) { h.h.Push(v) }

// Pop removes and returns the top value; ok=false when empty.
func (h StackHandle) Pop() (v uint64, ok bool) { return h.h.Pop() }

// Release returns the handle's reclamation slot to the stack. The handle
// must not be used afterwards; extra calls are no-ops.
func (h StackHandle) Release() {
	if h.released == nil || !h.released.CompareAndSwap(false, true) {
		return
	}
	h.d.Release(h.g)
}

// Acquire leases a handle for the calling goroutine.
func (s *Stack) Acquire() (StackHandle, error) {
	g, err := s.d.Acquire()
	if err != nil {
		return StackHandle{}, err
	}
	return StackHandle{h: s.structureFor(g), d: s.d, g: g, released: new(atomic.Bool)}, nil
}

// AcquireWait is Acquire that blocks while every slot is leased; it returns
// ctx.Err() if ctx is done before a slot frees.
func (s *Stack) AcquireWait(ctx context.Context) (StackHandle, error) {
	g, err := s.d.AcquireWait(ctx)
	if err != nil {
		return StackHandle{}, err
	}
	return StackHandle{h: s.structureFor(g), d: s.d, g: g, released: new(atomic.Bool)}, nil
}

// structureFor returns slot g's cached stack handle (slot-owner exclusive;
// see setCore.handles for the ordering argument).
func (s *Stack) structureFor(g reclaim.Guard) *stack.Handle {
	p := s.handles.Get(reclaim.SlotIndex(g))
	if *p == nil {
		*p = s.s.NewHandle(g)
	}
	return *p
}

// Handle returns worker w's handle, pinning slot w permanently. w must lie
// in the initial arena (see setCore.Handle); out-of-range w panics.
//
// Deprecated: use Acquire and Release.
func (s *Stack) Handle(w int) StackHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StackHandle{h: s.structureFor(s.d.Guard(w)), d: s.d}
}

// Stats returns the reclamation counters.
func (s *Stack) Stats() Stats { return fromReclaimStats(s.d.Stats()) }

// Len counts elements; only meaningful while no workers are active.
func (s *Stack) Len() int { return s.s.Len() }

// Close reclaims pending memory; call after all workers stopped.
func (s *Stack) Close() { s.d.Close() }
