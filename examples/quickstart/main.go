// Quickstart: a lock-free sorted set protected by QSense, through the
// public API. Four workers insert, delete and search concurrently; the
// reclamation domain recycles deleted nodes safely underneath them.
//
// Under the hood this is the paper's three-call interface (§4.2) —
// manage_qsense_state / assign_HP / free_node_later — already placed
// inside the container's code; an application only picks a scheme and
// hands each worker its handle. Swap SchemeQSense for SchemeQSBR,
// SchemeHP, SchemeCadence, SchemeEBR or SchemeRC: the container code is
// scheme-agnostic.
//
// For wiring a structure of your own through Pool/Domain/Guard, see
// examples/workqueue; for the three-call interface spelled out on the
// paper's own linked list, see examples/kvstore and examples/cadence.
package main

import (
	"fmt"
	"sync"

	"qsense"
)

func main() {
	const workers = 4

	set, err := qsense.NewSet(qsense.Options{
		Workers: workers,
		Scheme:  qsense.SchemeQSense,
	})
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := set.Handle(w) // one handle per worker, used only by it
			rng := uint64(w)*0x9E3779B9 + 1
			for i := 0; i < 50000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				key := int64(rng>>33) % 1000
				switch rng % 10 {
				case 0, 1, 2:
					h.Insert(key)
				case 3, 4:
					h.Delete(key)
				default:
					h.Contains(key)
				}
			}
		}(w)
	}
	wg.Wait()

	st := set.Stats()
	fmt.Printf("set size now: %d\n", set.Len())
	fmt.Printf("nodes retired: %d, freed while running: %d, awaiting: %d\n",
		st.Retired, st.Freed, st.Pending)
	set.Close() // reclaims the rest
	fmt.Printf("after close: pending=%d\n", set.Stats().Pending)
}
