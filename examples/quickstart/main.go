// Quickstart: a lock-free sorted set protected by QSense, through the
// public API. A burst of short-lived goroutines — the shape of a Go server
// handling requests — insert, delete and search concurrently; each leases
// a handle with AcquireWait, works, and Releases it, while the reclamation
// domain recycles deleted nodes safely underneath and recycles the guard
// slots themselves between goroutines.
//
// This example deliberately sets HardMaxWorkers, making it the
// backpressure demo: the cap turns AcquireWait into an admission
// controller that parks goroutines beyond the limit until a slot frees.
// Omit HardMaxWorkers (the default) and the domain is elastic instead —
// the arena grows on demand, plain Acquire never fails, and no goroutine
// ever waits; see examples/workqueue and examples/kvstore for that shape.
//
// Under the hood this is the paper's three-call interface (§4.2) —
// manage_qsense_state / assign_HP / free_node_later — already placed
// inside the container's code; an application only picks a scheme and
// leases handles. Swap SchemeQSense for SchemeQSBR, SchemeHP,
// SchemeCadence, SchemeEBR or SchemeRC: the container code is
// scheme-agnostic.
//
// For wiring a structure of your own through Pool/Domain/Guard, see
// examples/workqueue; for the three-call interface spelled out on the
// paper's own linked list, see examples/kvstore and examples/cadence.
package main

import (
	"context"
	"fmt"
	"sync"

	"qsense"
)

func main() {
	const (
		maxWorkers = 4  // hard cap on concurrent leases; goroutines beyond this park
		goroutines = 64 // total short-lived workers across the run
	)

	set, err := qsense.NewSet(qsense.Options{
		MaxWorkers:     maxWorkers,
		HardMaxWorkers: maxWorkers, // cap growth: this demo wants backpressure
		Scheme:         qsense.SchemeQSense,
	})
	if err != nil {
		panic(err)
	}

	// AcquireWait parks goroutines beyond the hard cap until a slot frees —
	// no semaphore or retry loop needed around the lease. (Without the cap
	// the arena would simply grow and nobody would wait.)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()

			h, err := set.AcquireWait(context.Background())
			if err != nil {
				panic(err) // only on context cancellation
			}
			defer h.Release() // recycle the slot, waking the next waiter

			rng := uint64(w)*0x9E3779B9 + 1
			for i := 0; i < 3000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				key := int64(rng>>33) % 1000
				switch rng % 10 {
				case 0, 1, 2:
					h.Insert(key)
				case 3, 4:
					h.Delete(key)
				default:
					h.Contains(key)
				}
			}
		}(w)
	}
	wg.Wait()

	st := set.Stats()
	fmt.Printf("set size now: %d\n", set.Len())
	fmt.Printf("handles leased: %d, released: %d (across %d slots)\n",
		st.AcquiredHandles, st.ReleasedHandles, maxWorkers)
	fmt.Printf("nodes retired: %d, freed while running: %d, awaiting: %d\n",
		st.Retired, st.Freed, st.Pending)
	set.Close() // reclaims the rest
	fmt.Printf("after close: pending=%d\n", set.Stats().Pending)
}
