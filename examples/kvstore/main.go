// kvstore: a concurrent ordered index under producer/consumer load — the
// kind of database workload the paper's introduction motivates ("operating
// systems and databases ... need concurrent data structures that scale and
// efficiently allocate/free memory").
//
// An order book keeps live order IDs in a lock-free skip list guarded by
// QSense. Producers admit orders, consumers fill (delete) them, and
// auditors run membership probes — all while nodes are recycled through the
// arena with no stop-the-world anything. The run prints throughput and the
// reclamation counters that show memory actually cycling.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/skiplist"
	"qsense/internal/workload"
)

const (
	producers = 2
	consumers = 2
	auditors  = 2
	workers   = producers + consumers + auditors
	idSpace   = 1 << 16
	runFor    = 2 * time.Second
)

func main() {
	book := skiplist.New(skiplist.Config{Levels: 14})
	// Workers is only the INITIAL arena size: it is deliberately set below
	// the goroutine count here, so the run demonstrates elastic growth —
	// the extra workers' Acquires publish new guard segments on demand
	// (watch ArenaSize/ArenaGrowths in the final stats) instead of failing.
	dom, err := reclaim.New("qsense", reclaim.Config{
		Workers: 2,
		HPs:     skiplist.HPsFor(book.Levels()),
		Free:    book.FreeNode,
	})
	if err != nil {
		panic(err)
	}

	var stop atomic.Bool
	var admitted, filled, probes atomic.Uint64
	var wg sync.WaitGroup
	worker := func(id int, body func(h *skiplist.Handle, rng *workload.RNG)) {
		defer wg.Done()
		g, err := dom.Acquire() // lease a guard slot; the arena grows on demand
		if err != nil {
			panic(err) // unreachable: no HardMaxWorkers cap is set
		}
		defer dom.Release(g)
		h := book.NewHandle(g, uint64(id+1))
		rng := workload.NewRNG(uint64(id) * 77)
		for !stop.Load() {
			body(h, rng)
		}
	}

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go worker(p, func(h *skiplist.Handle, rng *workload.RNG) {
			if h.Insert(rng.Key(idSpace)) {
				admitted.Add(1)
			}
		})
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go worker(producers+c, func(h *skiplist.Handle, rng *workload.RNG) {
			if h.Delete(rng.Key(idSpace)) {
				filled.Add(1)
			}
		})
	}
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go worker(producers+consumers+a, func(h *skiplist.Handle, rng *workload.RNG) {
			h.Contains(rng.Key(idSpace))
			probes.Add(1)
		})
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	open := book.Len()
	fmt.Printf("order book after %v:\n", runFor)
	fmt.Printf("  admitted %d, filled %d, probes %d (%.2f Mops/s total)\n",
		admitted.Load(), filled.Load(), probes.Load(),
		float64(admitted.Load()+filled.Load()+probes.Load())/runFor.Seconds()/1e6)
	fmt.Printf("  open orders: %d (admitted - filled = %d)\n", open, admitted.Load()-filled.Load())

	st := dom.Stats()
	pst := book.Pool().Stats()
	fmt.Printf("  memory: %d nodes allocated, %d freed, %d live\n", pst.Allocs, pst.Frees, pst.Live)
	fmt.Printf("  reclamation: retired %d, freed %d online, pending %d, quiescent states %d\n",
		st.Retired, st.Freed, st.Pending, st.QuiescentStates)
	fmt.Printf("  guard arena: started at 2 slots, grew %d time(s) to %d (peak %d workers leased at once)\n",
		st.ArenaGrowths, st.ArenaSize, st.HighWaterWorkers)
	fmt.Printf("  occupancy: %d slots parked (%d parks / %d unparks), %d records walked over %d scans+advances, R now %d after %d retune(s)\n",
		st.ParkedSlots, st.SegmentParks, st.SegmentUnparks,
		st.ScannedRecords, st.Scans+st.EpochAdvances, st.EffectiveR, st.RRetunes)

	dom.Close()
	if got, want := book.Pool().Stats().Live, uint64(open+2); got != want {
		fmt.Printf("  WARNING: leak check failed: %d live, want %d\n", got, want)
	} else {
		fmt.Printf("  leak check: clean (%d members + 2 sentinels)\n", open)
	}
}
