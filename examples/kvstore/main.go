// kvstore: a concurrent ordered key→value index under producer/consumer
// load — the kind of database workload the paper's introduction motivates
// ("operating systems and databases ... need concurrent data structures
// that scale and efficiently allocate/free memory").
//
// An order book keeps live orders in qsense.SkipMap — the Fraser skip list
// with a per-node value word, guarded by QSense. Producers admit orders
// (Put: order ID → encoded price), consumers fill them (Delete), and
// auditors look prices up (Get) — all while nodes are recycled through the
// arena with no stop-the-world anything. The run prints throughput and the
// reclamation counters that show memory actually cycling.
//
// This is the in-process half of the story. The same map served over TCP —
// RESP protocol, one leased handle per connection, STATS on the wire — is
// cmd/qsense-kvd; its -load mode drives the zipf/burst macro-benchmarks.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qsense"
	"qsense/internal/workload"
)

const (
	producers = 2
	consumers = 2
	auditors  = 2
	idSpace   = 1 << 16
	runFor    = 2 * time.Second
)

func main() {
	// MaxWorkers is only the INITIAL arena size: it is deliberately set
	// below the goroutine count here, so the run demonstrates elastic
	// growth — the extra workers' Acquires publish new guard segments on
	// demand (watch ArenaSize/ArenaGrowths in the final stats) instead of
	// failing.
	book, err := qsense.NewSkipMap(qsense.Options{MaxWorkers: 2})
	if err != nil {
		panic(err)
	}

	var stop atomic.Bool
	var admitted, filled, probes atomic.Uint64
	var wg sync.WaitGroup
	worker := func(id int, body func(h qsense.MapHandle, rng *workload.RNG)) {
		defer wg.Done()
		h, err := book.Acquire() // lease a handle; the arena grows on demand
		if err != nil {
			panic(err) // unreachable: no HardMaxWorkers cap is set
		}
		defer h.Release()
		rng := workload.NewRNG(uint64(id) * 77)
		for !stop.Load() {
			body(h, rng)
		}
	}

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go worker(p, func(h qsense.MapHandle, rng *workload.RNG) {
			id := rng.Key(idSpace)
			price := rng.Next() >> 32
			if h.PutUint64(id, price) {
				admitted.Add(1)
			}
		})
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go worker(producers+c, func(h qsense.MapHandle, rng *workload.RNG) {
			if h.Delete(rng.Key(idSpace)) {
				filled.Add(1)
			}
		})
	}
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go worker(producers+consumers+a, func(h qsense.MapHandle, rng *workload.RNG) {
			h.GetUint64(rng.Key(idSpace))
			probes.Add(1)
		})
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	open := book.Len()
	fmt.Printf("order book after %v:\n", runFor)
	fmt.Printf("  admitted %d, filled %d, probes %d (%.2f Mops/s total)\n",
		admitted.Load(), filled.Load(), probes.Load(),
		float64(admitted.Load()+filled.Load()+probes.Load())/runFor.Seconds()/1e6)
	fmt.Printf("  open orders: %d (admitted - filled = %d)\n", open, admitted.Load()-filled.Load())

	st := book.Stats()
	fmt.Printf("  reclamation: retired %d, freed %d online, pending %d, quiescent states %d\n",
		st.Retired, st.Freed, st.Pending, st.QuiescentStates)
	fmt.Printf("  guard arena: started at 2 slots, grew %d time(s) to %d (peak %d workers leased at once)\n",
		st.ArenaGrowths, st.ArenaSize, st.HighWaterWorkers)
	fmt.Printf("  occupancy: %d slots parked (%d parks / %d unparks), %d records walked over %d scans+advances, R now %d after %d retune(s)\n",
		st.ParkedSlots, st.SegmentParks, st.SegmentUnparks,
		st.ScannedRecords, st.Scans+st.EpochAdvances, st.EffectiveR, st.RRetunes)

	book.Close()
	if st := book.Stats(); st.Pending != 0 {
		fmt.Printf("  WARNING: leak check failed: %d nodes still pending after Close\n", st.Pending)
	} else {
		fmt.Printf("  leak check: clean (%d members live, nothing pending)\n", open)
	}
	fmt.Println("  networked version: go run ./cmd/qsense-kvd (see its -load mode for macro-benchmarks)")
}
