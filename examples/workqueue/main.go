// Workqueue: a producer/consumer pipeline over the PUBLIC qsense API,
// demonstrating both API levels at once:
//
//   - the ready-made lock-free Queue (Michael–Scott) moves task ids
//     between stages;
//   - the task payloads themselves live in a custom qsense.Pool, protected
//     by a qsense.Domain with the paper's three-call discipline — the
//     integration path an application with its own data structures
//     follows.
//
// Midway through the run one consumer stalls (simulating blocking I/O).
// Under plain QSBR that stall would pin every retired payload in memory;
// the QSense domain switches to its fallback path, keeps reclaiming, and
// switches back when the consumer returns — watch the SwitchesToFallback /
// SwitchesToFast counters in the final stats.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qsense"
)

// task is a payload node in the custom pool.
type task struct {
	id      uint64
	payload [6]uint64 // pretend work product
}

func main() {
	const (
		producers = 2
		consumers = 2
		workers   = producers + consumers
		tasks     = 40000
	)

	// The payload substrate: pool + reclamation domain. One hazard
	// pointer per worker is enough (a consumer holds one task at a time).
	// No MaxWorkers sizing: domains are elastic, so Acquire below simply
	// grows the guard arena if the stage count ever exceeds the initial
	// size — no capacity guess, no AcquireWait loop, no semaphore.
	pool := qsense.NewPool[task](qsense.PoolOptions{Name: "tasks"})
	dom, err := qsense.NewDomain(qsense.Options{
		HPs:    1,
		Scheme: qsense.SchemeQSense,
		Q:      8,
		C:      4096, // fallback trigger: must exceed the healthy burst backlog (§5.2)
	}, pool.FreeFunc())
	if err != nil {
		panic(err)
	}

	// The conveyor: task Refs travel through the lock-free queue.
	q, err := qsense.NewQueue(qsense.Options{})
	if err != nil {
		panic(err)
	}

	var produced, consumed atomic.Uint64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := dom.Acquire() // lease a guard for this goroutine's lifetime
			if err != nil {
				panic(err) // unreachable on an elastic domain
			}
			defer g.Release()
			qh, err := q.Acquire()
			if err != nil {
				panic(err)
			}
			defer qh.Release()
			for i := 0; i < tasks/producers; i++ {
				g.Begin()
				r, t := pool.Alloc()
				t.id = uint64(w)<<32 | uint64(i)
				for j := range t.payload {
					t.payload[j] = t.id * uint64(j+1)
				}
				qh.Enqueue(uint64(r))
				produced.Add(1)
				g.End()
			}
		}(p)
	}

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := dom.Acquire()
			if err != nil {
				panic(err)
			}
			defer g.Release()
			qh, err := q.Acquire()
			if err != nil {
				panic(err)
			}
			defer qh.Release()
			idle := 0
			for {
				g.Begin()
				v, ok := qh.Dequeue()
				if !ok {
					g.End()
					if produced.Load() == uint64(tasks) && consumed.Load() == produced.Load() {
						return
					}
					if idle++; idle > 1_000_000 {
						return // producers died; don't spin forever
					}
					continue
				}
				idle = 0
				r := qsense.Ref(v)
				// The dequeued Ref is exclusively ours (the queue
				// handed it over), but protect-before-use keeps the
				// discipline uniform and guards against bugs.
				g.Protect(0, r)
				t := pool.Get(r)
				var sum uint64
				for _, x := range t.payload {
					sum += x
				}
				_ = sum
				g.Retire(r) // payload consumed: free when safe
				consumed.Add(1)
				g.End()

				// Consumer 0 blocks mid-run, as if on slow I/O.
				if w == producers && consumed.Load() == tasks/4 {
					fmt.Println("consumer stalls for 300ms ...")
					time.Sleep(300 * time.Millisecond)
					fmt.Println("consumer back")
				}
			}
		}(producers + c)
	}

	wg.Wait()
	st := dom.Stats()
	fmt.Printf("produced %d, consumed %d\n", produced.Load(), consumed.Load())
	fmt.Printf("payloads: retired=%d freed=%d pending=%d live=%d\n",
		st.Retired, st.Freed, st.Pending, pool.Live())
	// Expect multiple engagements: retire bursts that outrun epoch
	// rotation trip the C threshold just like the injected stall does
	// (Algorithm 5 has no hysteresis), and every engagement recovered.
	fmt.Printf("qsense path switches: to-fallback=%d to-fast=%d (in fallback now: %v)\n",
		st.SwitchesToFallback, st.SwitchesToFast, st.InFallback)
	dom.Close()
	q.Close()
	fmt.Printf("after close: live=%d (0 = nothing leaked)\n", pool.Live())
}
