// cadence: the paper's fallback scheme used stand-alone (§5.1 notes
// "Cadence can be used either as part of QSense or as a stand-alone memory
// reclamation scheme"), here guarding the lock-free external BST.
//
// The demo shows the two mechanisms at work:
//
//  1. No fences: traversals publish hazard pointers with bare stores; the
//     rooster manager's periodic passes make them visible to scans.
//  2. Deferred reclamation keeps a sleeping reader safe: a reader parks on
//     a node mid-operation for a while; churn continues, the pending count
//     stays bounded, and the parked node is reclaimed only after release.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qsense/internal/bst"
	"qsense/internal/reclaim"
	"qsense/internal/workload"
)

func main() {
	const workers = 4
	tree := bst.New(bst.Config{})
	dom, err := reclaim.NewCadence(reclaim.Config{
		Workers: workers,
		HPs:     bst.HPs,
		Free:    tree.FreeNode,
	})
	if err != nil {
		panic(err)
	}

	// The "slow reader" leases the first guard: it protects a node by
	// hand and sleeps, exactly the scenario of the paper's Figure 1.
	slowGuard, err := dom.Acquire()
	if err != nil {
		panic(err)
	}
	defer dom.Release(slowGuard)
	slowHandle := tree.NewHandle(slowGuard)
	slowHandle.Insert(42)

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := dom.Acquire()
			if err != nil {
				panic(err)
			}
			defer dom.Release(g)
			h := tree.NewHandle(g)
			rng := workload.NewRNG(uint64(w))
			for !stop.Load() {
				k := rng.Key(4096)
				h.Insert(k)
				h.Delete(k)
				ops.Add(2)
			}
		}(w)
	}

	for i := 0; i < 6; i++ {
		time.Sleep(250 * time.Millisecond)
		st := dom.Stats()
		fmt.Printf("t=%4dms  ops %8d  retired %8d  freed %8d  pending %5d  rooster passes %d\n",
			(i+1)*250, ops.Load(), st.Retired, st.Freed, st.Pending, st.RoosterPasses)
	}
	stop.Store(true)
	wg.Wait()

	st := dom.Stats()
	fmt.Printf("\nchurn complete: pending stayed bounded at %d while %d nodes were recycled —\n", st.Pending, st.Freed)
	fmt.Println("no per-node fences were issued on any traversal (compare scheme \"hp\").")

	dom.Close()
	live := tree.Pool().Stats().Live
	fmt.Printf("after close: %d live nodes (tree members + 5 sentinels)\n", live)
}
