// delaytolerance: the paper's robustness story (Figure 5, bottom) as a live
// demo. Four workers churn a lock-free list; worker 0 periodically goes to
// sleep mid-stream, making quiescence impossible.
//
// Run once with QSBR and once with QSense, under the same retired-node
// budget standing in for physical memory:
//
//   - QSBR cannot reclaim anything while worker 0 sleeps; its limbo lists
//     blow through the budget and the "process" dies.
//   - QSense notices the backlog crossing C, raises the fallback flag,
//     reclaims through Cadence during the stall, and returns to the fast
//     path when worker 0 wakes — the run completes within budget.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qsense/internal/list"
	"qsense/internal/reclaim"
	"qsense/internal/workload"
)

const (
	workers   = 4
	keyRange  = 512
	runFor    = 3 * time.Second
	memBudget = 250000 // retired nodes the "machine" can hold
)

func main() {
	for _, scheme := range []string{"qsbr", "qsense"} {
		run(scheme)
	}
}

func run(scheme string) {
	fmt.Printf("=== %s, budget %d retired nodes, worker 0 sleeps 500ms of every 1s ===\n", scheme, memBudget)
	set := list.New(list.Config{})
	dom, err := reclaim.New(scheme, reclaim.Config{
		Workers:     workers,
		HPs:         list.HPs,
		Free:        set.FreeNode,
		MemoryLimit: memBudget,
	})
	if err != nil {
		panic(err)
	}

	plan := workload.DelayPlan{Worker: 0, Start: 500 * time.Millisecond,
		Duration: 500 * time.Millisecond, Period: time.Second}
	var stop atomic.Bool
	var ops atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := dom.Acquire() // lease a guard slot for this goroutine
			if err != nil {
				panic(err)
			}
			defer dom.Release(g)
			h := set.NewHandle(g)
			rng := workload.NewRNG(uint64(w + 1))
			for !stop.Load() && !dom.Failed() {
				if w == plan.Worker {
					if stalled, until := plan.StalledAt(time.Since(start)); stalled {
						time.Sleep(time.Until(start.Add(until)))
						continue
					}
				}
				k := rng.Key(keyRange)
				h.Insert(k)
				h.Delete(k)
				ops.Add(2)
			}
		}(w)
	}

	// Narrate the run: pending backlog and QSense's path, twice a second.
	for t := 0; t < int(runFor/(250*time.Millisecond)); t++ {
		time.Sleep(250 * time.Millisecond)
		st := dom.Stats()
		mode := "fast path"
		if st.InFallback {
			mode = "FALLBACK (Cadence)"
		}
		if st.Failed {
			fmt.Printf("  t=%4dms  OUT OF MEMORY — process dead (pending %d > budget)\n",
				(t+1)*250, st.Pending)
			break
		}
		fmt.Printf("  t=%4dms  pending %6d  freed %8d  %s\n", (t+1)*250, st.Pending, st.Freed, mode)
	}
	stop.Store(true)
	wg.Wait()

	st := dom.Stats()
	if st.Failed {
		fmt.Printf("result: FAILED after %d ops — blocking reclamation cannot ride out delays\n\n", ops.Load())
	} else {
		fmt.Printf("result: survived, %d ops, %d fallback switches, %d recoveries\n\n",
			ops.Load(), st.SwitchesToFallback, st.SwitchesToFast)
	}
	dom.Close()
}
