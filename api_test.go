package qsense_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"qsense"
)

// apiSchemes is every registered reclaiming scheme — derived from
// SchemeNames so a newly registered scheme is exercised by the public API
// tests without edits here. The leaky baseline is excluded: these tests
// assert reclamation side effects.
var apiSchemes = func() []qsense.Scheme {
	var out []qsense.Scheme
	for _, s := range qsense.SchemeNames() {
		if qsense.Scheme(s) != qsense.SchemeNone {
			out = append(out, qsense.Scheme(s))
		}
	}
	return out
}()

// TestPublicSetContainers: the four set containers share semantics across
// every scheme through the public API alone.
func TestPublicSetContainers(t *testing.T) {
	type mkSet func(qsense.Options) (interface {
		Handle(int) qsense.SetHandle
		Stats() qsense.Stats
		Close()
		Len() int
	}, error)
	containers := map[string]mkSet{
		"set": func(o qsense.Options) (interface {
			Handle(int) qsense.SetHandle
			Stats() qsense.Stats
			Close()
			Len() int
		}, error) {
			return qsense.NewSet(o)
		},
		"skipset": func(o qsense.Options) (interface {
			Handle(int) qsense.SetHandle
			Stats() qsense.Stats
			Close()
			Len() int
		}, error) {
			return qsense.NewSkipSet(o)
		},
		"treeset": func(o qsense.Options) (interface {
			Handle(int) qsense.SetHandle
			Stats() qsense.Stats
			Close()
			Len() int
		}, error) {
			return qsense.NewTreeSet(o)
		},
		"hashset": func(o qsense.Options) (interface {
			Handle(int) qsense.SetHandle
			Stats() qsense.Stats
			Close()
			Len() int
		}, error) {
			return qsense.NewHashSet(o)
		},
	}
	for name, mk := range containers {
		for _, scheme := range apiSchemes {
			t.Run(name+"/"+string(scheme), func(t *testing.T) {
				s, err := mk(qsense.Options{Workers: 1, Scheme: scheme})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				h := s.Handle(0)
				for k := int64(1); k <= 50; k++ {
					if !h.Insert(k) {
						t.Fatalf("insert %d failed", k)
					}
				}
				if h.Insert(25) {
					t.Fatal("duplicate insert succeeded")
				}
				if s.Len() != 50 {
					t.Fatalf("Len = %d, want 50", s.Len())
				}
				for k := int64(1); k <= 50; k += 2 {
					if !h.Delete(k) {
						t.Fatalf("delete %d failed", k)
					}
				}
				for k := int64(1); k <= 50; k++ {
					want := k%2 == 0
					if h.Contains(k) != want {
						t.Fatalf("contains(%d) = %v, want %v", k, !want, want)
					}
				}
				if st := s.Stats(); st.Retired == 0 {
					t.Fatalf("deletes retired nothing: %+v", st)
				}
			})
		}
	}
}

// TestPublicQueueStack: FIFO/LIFO via the public API.
func TestPublicQueueStack(t *testing.T) {
	q, err := qsense.NewQueue(qsense.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	h := q.Handle(0)
	h.Enqueue(1)
	h.Enqueue(2)
	if v, ok := q.Handle(1).Dequeue(); !ok || v != 1 {
		t.Fatalf("dequeue = %d,%v", v, ok)
	}

	s, err := qsense.NewStack(qsense.Options{Workers: 1, Scheme: qsense.SchemeHP})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.Handle(0)
	sh.Push(1)
	sh.Push(2)
	if v, ok := sh.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
}

// TestPublicConcurrentSet: concurrent churn through the facade reclaims
// memory and keeps the set consistent.
func TestPublicConcurrentSet(t *testing.T) {
	const workers = 4
	// Epoch rotation needs every worker to pass several quiescent states;
	// on an oversubscribed scheduler each rotation costs ~a timeslice, so
	// the churn must be long enough for a few rotations (Q=8 helps too).
	set, err := qsense.NewSet(qsense.Options{Workers: workers, Q: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := set.Handle(w)
			rng := uint64(w)*0x9E3779B9 + 1
			for i := 0; i < 100000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := int64(rng>>33)%256 + 1
				switch rng % 4 {
				case 0:
					h.Insert(k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := set.Stats()
	if st.Freed == 0 {
		t.Fatalf("no reclamation during concurrent churn: %+v", st)
	}
	set.Close()
	if st := set.Stats(); st.Pending != 0 {
		t.Fatalf("pending after Close: %+v", st)
	}
}

// TestCustomStructureViaPublicAPI builds a minimal custom structure (a
// single shared cell with replace semantics) against Pool/Domain/Guard —
// the integration path a downstream structure author follows.
func TestCustomStructureViaPublicAPI(t *testing.T) {
	type cell struct {
		val uint64
	}
	for _, scheme := range apiSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			pool := qsense.NewPool[cell](qsense.PoolOptions{Name: "cells"})
			dom, err := qsense.NewDomain(qsense.Options{
				Workers: 3, HPs: 1, Scheme: scheme,
			}, pool.FreeFunc())
			if err != nil {
				t.Fatal(err)
			}
			var slot atomic.Uint64 // holds a Ref

			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					g := dom.Guard(w)
					for i := 0; i < 5000; i++ {
						g.Begin()
						if i%2 == 0 {
							// Publish a fresh cell; retire the displaced one.
							r, c := pool.Alloc()
							c.val = uint64(w)<<32 | uint64(i)
							if old := qsense.Ref(slot.Swap(uint64(r))); !old.IsNil() {
								g.Retire(old)
							}
						} else {
							// Read with the protect/validate discipline.
							for {
								r := qsense.Ref(slot.Load())
								if r.IsNil() {
									break
								}
								g.Protect(0, r)
								if qsense.Ref(slot.Load()) != r {
									continue
								}
								_ = pool.Get(r).val
								break
							}
						}
						g.End()
					}
				}(w)
			}
			wg.Wait()
			if r := qsense.Ref(slot.Swap(0)); !r.IsNil() {
				dom.Guard(0).Retire(r)
			}
			dom.Close()
			if live := pool.Live(); live != 0 {
				t.Fatalf("%d cells leaked", live)
			}
		})
	}
}

// TestOptionsDefaults: the zero Options value works and selects QSense.
func TestOptionsDefaults(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if !set.Handle(0).Insert(1) {
		t.Fatal("insert failed")
	}
	if got := set.Stats().Scheme; got != "qsense" {
		t.Fatalf("default scheme = %q", got)
	}
}

// TestRefTagRoundTrip: the public Ref tag helpers mirror the substrate.
func TestRefTagRoundTrip(t *testing.T) {
	pool := qsense.NewPool[int](qsense.PoolOptions{})
	r, _ := pool.Alloc()
	if r.IsNil() {
		t.Fatal("fresh ref is nil")
	}
	tagged := r.WithTag(1)
	if tagged.Tag() != 1 || tagged.Untagged() != r {
		t.Fatalf("tag round trip broke: %v -> %v", r, tagged)
	}
	if !pool.Valid(r) {
		t.Fatal("ref not valid")
	}
	pool.Free(r)
	if pool.Valid(r) {
		t.Fatal("freed ref still valid")
	}
}
