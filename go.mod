module qsense

go 1.24
