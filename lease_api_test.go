package qsense_test

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"qsense"
)

// acquireRetry leases a handle, yielding while the arena is full — the
// pattern a goroutine-per-request server uses under load spikes.
func acquireRetry[H any](t *testing.T, acquire func() (H, error)) H {
	t.Helper()
	for {
		h, err := acquire()
		if err == nil {
			return h
		}
		if !errors.Is(err, qsense.ErrNoSlots) {
			t.Fatalf("acquire: %v", err)
		}
		runtime.Gosched()
	}
}

// TestSetAcquireRelease: the leased-handle surface of the four set
// containers across every scheme — lease, operate, release, recycle.
func TestSetAcquireRelease(t *testing.T) {
	type setContainer interface {
		Acquire() (qsense.SetHandle, error)
		Stats() qsense.Stats
		Close()
		Len() int
	}
	containers := map[string]func(qsense.Options) (setContainer, error){
		"set":     func(o qsense.Options) (setContainer, error) { return qsense.NewSet(o) },
		"skipset": func(o qsense.Options) (setContainer, error) { return qsense.NewSkipSet(o) },
		"treeset": func(o qsense.Options) (setContainer, error) { return qsense.NewTreeSet(o) },
		"hashset": func(o qsense.Options) (setContainer, error) { return qsense.NewHashSet(o) },
	}
	for name, mk := range containers {
		for _, scheme := range apiSchemes {
			t.Run(name+"/"+string(scheme), func(t *testing.T) {
				s, err := mk(qsense.Options{MaxWorkers: 2, Scheme: scheme})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				h, err := s.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				for k := int64(1); k <= 30; k++ {
					if !h.Insert(k) {
						t.Fatalf("insert %d failed", k)
					}
				}
				h.Release()
				h.Release() // extra Release must be a no-op

				// The slot must recycle: with MaxWorkers=2 both leases
				// succeed only if the first came back.
				h1, err1 := s.Acquire()
				h2, err2 := s.Acquire()
				if err1 != nil || err2 != nil {
					t.Fatalf("re-acquire after release: %v / %v", err1, err2)
				}
				if _, err := s.Acquire(); !errors.Is(err, qsense.ErrNoSlots) {
					t.Fatalf("third lease on a 2-slot arena: err = %v, want ErrNoSlots", err)
				}
				for k := int64(1); k <= 30; k += 2 {
					if !h1.Delete(k) {
						t.Fatalf("delete %d failed", k)
					}
				}
				for k := int64(1); k <= 30; k++ {
					if want := k%2 == 0; h2.Contains(k) != want {
						t.Fatalf("contains(%d) != %v", k, want)
					}
				}
				if s.Len() != 15 {
					t.Fatalf("Len = %d, want 15", s.Len())
				}
				h1.Release()
				h2.Release()
				st := s.Stats()
				if st.AcquiredHandles != 3 || st.ReleasedHandles != 3 {
					t.Fatalf("lease counters %d/%d, want 3/3", st.AcquiredHandles, st.ReleasedHandles)
				}
			})
		}
	}
}

// TestQueueStackAcquireRelease: the leased-handle surface of Queue/Stack.
func TestQueueStackAcquireRelease(t *testing.T) {
	q, err := qsense.NewQueue(qsense.Options{MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	qh, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	qh.Enqueue(1)
	qh.Enqueue(2)
	qh.Release()
	qh2, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := qh2.Dequeue(); !ok || v != 1 {
		t.Fatalf("dequeue = %d,%v", v, ok)
	}
	qh2.Release()

	s, err := qsense.NewStack(qsense.Options{MaxWorkers: 1, Scheme: qsense.SchemeHP})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	sh.Push(1)
	sh.Push(2)
	if v, ok := sh.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	sh.Release()
	if st := s.Stats(); st.AcquiredHandles != 1 || st.ReleasedHandles != 1 {
		t.Fatalf("lease counters %+v", st)
	}
}

// TestDomainAcquireRelease: the custom-structure path — Domain.Acquire,
// Guard.Release, and the Leave/Join park protocol on an epoch scheme.
func TestDomainAcquireRelease(t *testing.T) {
	type cell struct{ val uint64 }
	pool := qsense.NewPool[cell](qsense.PoolOptions{Name: "lease-cells"})
	dom, err := qsense.NewDomain(qsense.Options{MaxWorkers: 2, HPs: 1, Scheme: qsense.SchemeQSBR, Q: 1},
		pool.FreeFunc())
	if err != nil {
		t.Fatal(err)
	}
	defer dom.Close()
	g, err := dom.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	parked, err := dom.Acquire()
	if err != nil {
		t.Fatal(err)
	}

	r, c := pool.Alloc()
	c.val = 1
	g.Begin()
	g.Retire(r)

	// A parked worker (Leave) must not block reclamation; Join re-enters.
	parked.Leave()
	for i := 0; i < 8 && pool.Valid(r); i++ {
		g.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("left guard still blocks grace periods")
	}
	parked.Join()

	parked.Release()
	g.Release()
	g.Release() // no-op
	if st := dom.Stats(); st.AcquiredHandles != 2 || st.ReleasedHandles != 2 {
		t.Fatalf("lease counters %d/%d", st.AcquiredHandles, st.ReleasedHandles)
	}
	// Both slots must be back.
	a := acquireRetry(t, dom.Acquire)
	b := acquireRetry(t, dom.Acquire)
	a.Release()
	b.Release()
}

// TestGoroutinePerRequestChurn is the end-to-end acceptance scenario: far
// more short-lived goroutines than guard slots stream through
// Acquire/operate/Release on a shared set, on both the paper's hybrid and
// classic hazard pointers. The run must stay memory-bounded (sampled
// Pending never exceeds a fixed budget), produce zero safety violations
// (the poisoned pool panics on use-after-free; run with -race for the
// allocator's ordering), leak no slots, and reclaim while slots sit
// unleased.
func TestGoroutinePerRequestChurn(t *testing.T) {
	for _, scheme := range []qsense.Scheme{qsense.SchemeQSense, qsense.SchemeHP} {
		t.Run(string(scheme), func(t *testing.T) {
			const maxWorkers = 4
			requests, opsPer := 600, 150
			if testing.Short() {
				requests, opsPer = 200, 100
			}
			set, err := qsense.NewSet(qsense.Options{
				MaxWorkers: maxWorkers,
				Scheme:     scheme,
				Q:          8,
				R:          32,
				C:          512, // small (but legal) so QSense engages its fallback under churn
			})
			if err != nil {
				t.Fatal(err)
			}

			// memBudget is generous against steady-state pending (tens of
			// nodes per leased slot here) but far below total retire volume,
			// so unbounded growth — the failure leasing must prevent — trips
			// it long before the run ends.
			const memBudget = 20000
			var peak atomic.Int64
			var wg sync.WaitGroup
			sem := make(chan struct{}, 2*maxWorkers) // keep >MaxWorkers goroutines contending
			for req := 0; req < requests; req++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(req int) {
					defer wg.Done()
					defer func() { <-sem }()
					h := acquireRetry(t, set.Acquire)
					defer h.Release()
					rng := uint64(req)*0x9E3779B9 + 1
					for i := 0; i < opsPer; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := int64(rng>>33)%512 + 1
						switch rng % 4 {
						case 0:
							h.Insert(k)
						case 1:
							h.Delete(k)
						default:
							h.Contains(k)
						}
					}
					if p := set.Stats().Pending; p > peak.Load() {
						peak.Store(p)
					}
				}(req)
			}
			wg.Wait()

			st := set.Stats()
			if p := peak.Load(); p > memBudget {
				t.Fatalf("pending peaked at %d (> budget %d): memory not bounded under churn", p, memBudget)
			}
			if st.AcquiredHandles != uint64(requests) || st.ReleasedHandles != uint64(requests) {
				t.Fatalf("lease counters %d/%d, want %d/%d",
					st.AcquiredHandles, st.ReleasedHandles, requests, requests)
			}
			if st.Freed == 0 {
				t.Fatalf("nothing reclaimed during churn: %+v", st)
			}
			// No slot leaks: the full arena must be acquirable afterwards.
			handles := make([]qsense.SetHandle, maxWorkers)
			for i := range handles {
				h, err := set.Acquire()
				if err != nil {
					t.Fatalf("slot leaked: re-acquire %d failed: %v", i, err)
				}
				handles[i] = h
			}
			for _, h := range handles {
				h.Release()
			}
			set.Close()
			if st := set.Stats(); st.Pending != 0 {
				t.Fatalf("pending after Close: %+v", st)
			}
		})
	}
}

// TestReclamationWhileSlotsUnleased: one lone goroutine cycling leases must
// keep reclaiming even though most of the arena sits vacant — vacant slots
// may not count toward grace periods.
func TestReclamationWhileSlotsUnleased(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 16, Scheme: qsense.SchemeQSBR, Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	epochs0 := set.Stats().EpochAdvances
	for cycle := 0; cycle < 50; cycle++ {
		h := acquireRetry(t, set.Acquire)
		for k := int64(0); k < 32; k++ {
			h.Insert(k)
			h.Delete(k)
		}
		h.Release()
	}
	st := set.Stats()
	if st.Freed == 0 {
		t.Fatalf("15 vacant slots starved reclamation: %+v", st)
	}
	if st.EpochAdvances == epochs0 {
		t.Fatalf("epoch frozen while slots were unleased: %+v", st)
	}
}
