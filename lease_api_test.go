package qsense_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qsense"
)

// acquireWait leases a handle, blocking while the arena is full — what a
// goroutine-per-request server does under load spikes, with the waiter
// built into the API instead of a retry-on-ErrNoSlots spin.
func acquireWait[H any](t *testing.T, acquire func(context.Context) (H, error)) H {
	t.Helper()
	h, err := acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	return h
}

// TestSetAcquireRelease: the leased-handle surface of the four set
// containers across every scheme — lease, operate, release, recycle.
func TestSetAcquireRelease(t *testing.T) {
	type setContainer interface {
		Acquire() (qsense.SetHandle, error)
		Stats() qsense.Stats
		Close()
		Len() int
	}
	containers := map[string]func(qsense.Options) (setContainer, error){
		"set":     func(o qsense.Options) (setContainer, error) { return qsense.NewSet(o) },
		"skipset": func(o qsense.Options) (setContainer, error) { return qsense.NewSkipSet(o) },
		"treeset": func(o qsense.Options) (setContainer, error) { return qsense.NewTreeSet(o) },
		"hashset": func(o qsense.Options) (setContainer, error) { return qsense.NewHashSet(o) },
	}
	for name, mk := range containers {
		for _, scheme := range apiSchemes {
			t.Run(name+"/"+string(scheme), func(t *testing.T) {
				// Hard-capped at 2: this test exercises the fixed-arena
				// recycle/exhaustion semantics (elastic growth is covered
				// by TestElasticAcquireNeverFails).
				s, err := mk(qsense.Options{MaxWorkers: 2, HardMaxWorkers: 2, Scheme: scheme})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				h, err := s.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				for k := int64(1); k <= 30; k++ {
					if !h.Insert(k) {
						t.Fatalf("insert %d failed", k)
					}
				}
				h.Release()
				h.Release() // extra Release must be a no-op

				// The slot must recycle: with MaxWorkers=2 both leases
				// succeed only if the first came back.
				h1, err1 := s.Acquire()
				h2, err2 := s.Acquire()
				if err1 != nil || err2 != nil {
					t.Fatalf("re-acquire after release: %v / %v", err1, err2)
				}
				if _, err := s.Acquire(); !errors.Is(err, qsense.ErrNoSlots) {
					t.Fatalf("third lease on a 2-slot arena: err = %v, want ErrNoSlots", err)
				}
				for k := int64(1); k <= 30; k += 2 {
					if !h1.Delete(k) {
						t.Fatalf("delete %d failed", k)
					}
				}
				for k := int64(1); k <= 30; k++ {
					if want := k%2 == 0; h2.Contains(k) != want {
						t.Fatalf("contains(%d) != %v", k, want)
					}
				}
				if s.Len() != 15 {
					t.Fatalf("Len = %d, want 15", s.Len())
				}
				h1.Release()
				h2.Release()
				st := s.Stats()
				if st.AcquiredHandles != 3 || st.ReleasedHandles != 3 {
					t.Fatalf("lease counters %d/%d, want 3/3", st.AcquiredHandles, st.ReleasedHandles)
				}
			})
		}
	}
}

// TestQueueStackAcquireRelease: the leased-handle surface of Queue/Stack.
func TestQueueStackAcquireRelease(t *testing.T) {
	q, err := qsense.NewQueue(qsense.Options{MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	qh, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	qh.Enqueue(1)
	qh.Enqueue(2)
	qh.Release()
	qh2, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := qh2.Dequeue(); !ok || v != 1 {
		t.Fatalf("dequeue = %d,%v", v, ok)
	}
	qh2.Release()

	s, err := qsense.NewStack(qsense.Options{MaxWorkers: 1, Scheme: qsense.SchemeHP})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	sh.Push(1)
	sh.Push(2)
	if v, ok := sh.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	sh.Release()
	if st := s.Stats(); st.AcquiredHandles != 1 || st.ReleasedHandles != 1 {
		t.Fatalf("lease counters %+v", st)
	}
}

// TestDomainAcquireRelease: the custom-structure path — Domain.Acquire,
// Guard.Release, and the Leave/Join park protocol on an epoch scheme.
func TestDomainAcquireRelease(t *testing.T) {
	type cell struct{ val uint64 }
	pool := qsense.NewPool[cell](qsense.PoolOptions{Name: "lease-cells"})
	dom, err := qsense.NewDomain(qsense.Options{MaxWorkers: 2, HPs: 1, Scheme: qsense.SchemeQSBR, Q: 1},
		pool.FreeFunc())
	if err != nil {
		t.Fatal(err)
	}
	defer dom.Close()
	g, err := dom.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	parked, err := dom.Acquire()
	if err != nil {
		t.Fatal(err)
	}

	r, c := pool.Alloc()
	c.val = 1
	g.Begin()
	g.Retire(r)

	// A parked worker (Leave) must not block reclamation; Join re-enters.
	parked.Leave()
	for i := 0; i < 8 && pool.Valid(r); i++ {
		g.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("left guard still blocks grace periods")
	}
	parked.Join()

	parked.Release()
	g.Release()
	g.Release() // no-op
	if st := dom.Stats(); st.AcquiredHandles != 2 || st.ReleasedHandles != 2 {
		t.Fatalf("lease counters %d/%d", st.AcquiredHandles, st.ReleasedHandles)
	}
	// Both slots must be back.
	a := acquireWait(t, dom.AcquireWait)
	b := acquireWait(t, dom.AcquireWait)
	a.Release()
	b.Release()
}

// TestGoroutinePerRequestChurn is the end-to-end acceptance scenario: far
// more short-lived goroutines than guard slots stream through
// Acquire/operate/Release on a shared set, on both the paper's hybrid and
// classic hazard pointers. The run must stay memory-bounded (sampled
// Pending never exceeds a fixed budget), produce zero safety violations
// (the poisoned pool panics on use-after-free; run with -race for the
// allocator's ordering), leak no slots, and reclaim while slots sit
// unleased.
func TestGoroutinePerRequestChurn(t *testing.T) {
	for _, scheme := range []qsense.Scheme{qsense.SchemeQSense, qsense.SchemeHP} {
		t.Run(string(scheme), func(t *testing.T) {
			const maxWorkers = 4
			requests, opsPer := 600, 150
			if testing.Short() {
				requests, opsPer = 200, 100
			}
			set, err := qsense.NewSet(qsense.Options{
				MaxWorkers: maxWorkers,
				Scheme:     scheme,
				Q:          8,
				R:          32,
				C:          512, // small (but legal) so QSense engages its fallback under churn
			})
			if err != nil {
				t.Fatal(err)
			}

			// memBudget is generous against steady-state pending (tens of
			// nodes per leased slot here) but far below total retire volume,
			// so unbounded growth — the failure leasing must prevent — trips
			// it long before the run ends.
			const memBudget = 20000
			var peak atomic.Int64
			var wg sync.WaitGroup
			sem := make(chan struct{}, 2*maxWorkers) // keep >MaxWorkers goroutines contending
			for req := 0; req < requests; req++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(req int) {
					defer wg.Done()
					defer func() { <-sem }()
					h := acquireWait(t, set.AcquireWait)
					defer h.Release()
					rng := uint64(req)*0x9E3779B9 + 1
					for i := 0; i < opsPer; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := int64(rng>>33)%512 + 1
						switch rng % 4 {
						case 0:
							h.Insert(k)
						case 1:
							h.Delete(k)
						default:
							h.Contains(k)
						}
					}
					if p := set.Stats().Pending; p > peak.Load() {
						peak.Store(p)
					}
				}(req)
			}
			wg.Wait()

			st := set.Stats()
			if p := peak.Load(); p > memBudget {
				t.Fatalf("pending peaked at %d (> budget %d): memory not bounded under churn", p, memBudget)
			}
			if st.AcquiredHandles != uint64(requests) || st.ReleasedHandles != uint64(requests) {
				t.Fatalf("lease counters %d/%d, want %d/%d",
					st.AcquiredHandles, st.ReleasedHandles, requests, requests)
			}
			if st.Freed == 0 {
				t.Fatalf("nothing reclaimed during churn: %+v", st)
			}
			// No slot leaks: the full arena must be acquirable afterwards.
			handles := make([]qsense.SetHandle, maxWorkers)
			for i := range handles {
				h, err := set.Acquire()
				if err != nil {
					t.Fatalf("slot leaked: re-acquire %d failed: %v", i, err)
				}
				handles[i] = h
			}
			for _, h := range handles {
				h.Release()
			}
			set.Close()
			if st := set.Stats(); st.Pending != 0 {
				t.Fatalf("pending after Close: %+v", st)
			}
		})
	}
}

// TestReclamationWhileSlotsUnleased: one lone goroutine cycling leases must
// keep reclaiming even though most of the arena sits vacant — vacant slots
// may not count toward grace periods.
func TestReclamationWhileSlotsUnleased(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 16, Scheme: qsense.SchemeQSBR, Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	epochs0 := set.Stats().EpochAdvances
	for cycle := 0; cycle < 50; cycle++ {
		h := acquireWait(t, set.AcquireWait)
		for k := int64(0); k < 32; k++ {
			h.Insert(k)
			h.Delete(k)
		}
		h.Release()
	}
	st := set.Stats()
	if st.Freed == 0 {
		t.Fatalf("15 vacant slots starved reclamation: %+v", st)
	}
	if st.EpochAdvances == epochs0 {
		t.Fatalf("epoch frozen while slots were unleased: %+v", st)
	}
}

// TestAcquireWaitPublic: the blocking lease surface — a waiter parks while
// the arena is exhausted, wakes on Release, and honors context
// cancellation — on both the container and custom-structure APIs.
func TestAcquireWaitPublic(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 1, HardMaxWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	h, err := set.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan qsense.SetHandle)
	go func() {
		h2, err := set.AcquireWait(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- h2
	}()
	select {
	case <-got:
		t.Fatal("AcquireWait returned while the arena was exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	h.Release()
	select {
	case h2 := <-got:
		h2.Insert(1)
		h2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("AcquireWait not woken by Release")
	}

	// Context cancellation unblocks a parked waiter with ctx.Err().
	h3, err := set.AcquireWait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := set.AcquireWait(ctx)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("AcquireWait returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock AcquireWait")
	}
	h3.Release()
}

// TestOrphanStatsPublic: a released handle's unreclaimed backlog surfaces
// as OrphanedNodes, stays Pending until other workers adopt it, and the
// adoption shows up as AdoptedNodes — all through the public container API,
// with the releasing slot never leased again.
func TestOrphanStatsPublic(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 2, Scheme: qsense.SchemeQSBR, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	worker := acquireWait(t, set.AcquireWait)
	leaver := acquireWait(t, set.AcquireWait)
	for k := int64(0); k < 16; k++ {
		leaver.Insert(k)
		leaver.Delete(k) // retires the node on the leaver's guard
	}
	leaver.Release()
	st := set.Stats()
	if st.OrphanedNodes == 0 {
		t.Fatalf("released backlog was not orphaned: %+v", st)
	}
	// The other worker's quiescent states adopt the orphans; the leaver's
	// slot stays vacant (no Acquire until the backlog is gone).
	for i := 0; i < 64 && set.Stats().Pending > 0; i++ {
		worker.Contains(int64(i))
	}
	st = set.Stats()
	if st.Pending != 0 {
		t.Fatalf("orphans not adopted while the slot sat vacant: %+v", st)
	}
	if st.AdoptedNodes == 0 {
		t.Fatalf("Pending drained without adoption: %+v", st)
	}
	worker.Release()
}
