package qsense_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"qsense"
	"qsense/internal/workload"
)

// TestSkipMapValueConformance is the torn/freed-value detector at the
// public API, run across every scheme at Shards=1 and 4: concurrent
// handles upsert self-verifying payloads (workload.AppendPayload embeds a
// per-write salt and fills the body from a checksummed stream) over a
// small hot key range while readers verify every observed value. A read
// that stitches bytes from two writes (torn), or that lands on a recycled
// value node (freed), fails VerifyPayload. Sizes straddle the 7-byte
// inline boundary so both representations — and the transitions between
// them — are exercised.
func TestSkipMapValueConformance(t *testing.T) {
	const (
		workers  = 4
		keyRange = 48
	)
	opsEach := 8000
	if testing.Short() {
		opsEach = 2000
	}
	for _, scheme := range apiSchemes {
		for _, shards := range []int{1, 4} {
			scheme, shards := scheme, shards
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				m, err := qsense.NewSkipMap(qsense.Options{Scheme: scheme, Shards: shards, MaxWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				defer m.Close()
				var bad, reads atomic.Uint64
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						h, err := m.Acquire()
						if err != nil {
							errs <- err
							return
						}
						defer h.Release()
						rng := workload.NewRNG(uint64(w)*7919 + uint64(shards)*31 + 1)
						var buf, val []byte
						for i := 0; i < opsEach; i++ {
							k := rng.Key(keyRange)
							switch rng.Next() % 4 {
							case 0:
								// 0..24 bytes: inline, spilled, and the
								// boundary between them.
								n := int(rng.Next() % 25)
								val = workload.AppendPayload(val[:0], k, rng.Next(), n)
								h.Put(k, val)
							case 1:
								h.Delete(k)
							default:
								v, ok := h.GetAppend(k, buf[:0])
								buf = v
								if ok {
									reads.Add(1)
									if !workload.VerifyPayload(v, k) {
										bad.Add(1)
									}
								}
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				if n := bad.Load(); n != 0 {
					t.Fatalf("%d of %d reads observed torn or freed value bytes", n, reads.Load())
				}
				if reads.Load() == 0 {
					t.Fatal("detector never observed a value; workload broken")
				}
				// Drain: after deleting every key the value gauges must
				// return to zero — leaked payload bytes mean a lost retire.
				h, err := m.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				for k := int64(0); k < keyRange; k++ {
					h.Delete(k)
				}
				h.Release()
				if vs := m.Values(); vs.Bytes != 0 || vs.Spilled != 0 {
					t.Fatalf("value gauges nonzero after full drain: %+v", vs)
				}
			})
		}
	}
}
