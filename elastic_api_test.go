package qsense_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qsense"
)

// TestElasticAcquireNeverFails is the acceptance criterion of the elastic
// redesign: with DEFAULT Options, Acquire never returns ErrNoSlots even
// when 10,000 goroutines hold handles at once — the guard arena grows on
// demand (ArenaGrowths > 0), every goroutine gets a distinct live slot
// (HighWaterWorkers reaches the population), and the domain still
// reclaims and recycles cleanly afterwards.
func TestElasticAcquireNeverFails(t *testing.T) {
	goroutines := 10000
	if testing.Short() {
		goroutines = 2000
	}
	set, err := qsense.NewSet(qsense.Options{}) // all defaults: elastic QSense
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	var failures atomic.Uint64
	var wg, holding sync.WaitGroup
	holding.Add(goroutines)
	allHeld := make(chan struct{})
	go func() { holding.Wait(); close(allHeld) }()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := set.Acquire()
			holding.Done()
			if err != nil {
				failures.Add(1)
				return
			}
			defer h.Release()
			// Barrier: nobody releases until every goroutine holds a
			// handle, so the domain really carries `goroutines` leases at
			// once — growth MUST engage whatever GOMAXPROCS is.
			<-allHeld
			rng := uint64(g)*0x9E3779B9 + 1
			for i := 0; i < 8; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := int64(rng>>33)%1024 + 1
				switch rng % 4 {
				case 0:
					h.Insert(k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d Acquires failed on a default (elastic) domain", n, goroutines)
	}
	st := set.Stats()
	if st.AcquiredHandles != uint64(goroutines) || st.ReleasedHandles != uint64(goroutines) {
		t.Fatalf("lease counters %d/%d, want %d/%d",
			st.AcquiredHandles, st.ReleasedHandles, goroutines, goroutines)
	}
	if st.ArenaGrowths == 0 {
		t.Fatalf("%d concurrent leases never grew the arena: %+v", goroutines, st)
	}
	if st.HighWaterWorkers > st.ArenaSize {
		t.Fatalf("HighWaterWorkers %d exceeds ArenaSize %d", st.HighWaterWorkers, st.ArenaSize)
	}
	if st.HighWaterWorkers != goroutines {
		t.Fatalf("HighWaterWorkers = %d, want %d (every goroutine held a slot at the barrier)",
			st.HighWaterWorkers, goroutines)
	}
	if st.RRetunes == 0 {
		t.Fatalf("scan threshold never re-tuned while growing to %d slots: %+v", st.ArenaSize, st)
	}
	// Occupancy-proportional decay: with the burst drained, a few solo
	// lease cycles must leave the grown capacity parked — every later scan
	// and epoch advance walks a near-empty arena, not the 10k high-water.
	for i := 0; i < 4; i++ {
		h, err := set.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		h.Contains(1)
		h.Release()
	}
	st = set.Stats()
	if st.SegmentParks == 0 || st.ParkedSlots == 0 {
		t.Fatalf("grown capacity never parked after the burst drained: %+v", st)
	}
	if walked := st.ArenaSize - st.ParkedSlots; walked > st.ArenaSize/2 {
		t.Fatalf("%d of %d slots still walked after the burst drained", walked, st.ArenaSize)
	}
	set.Close()
	if st := set.Stats(); st.Pending != 0 {
		t.Fatalf("pending after Close: %+v", st)
	}
}

// TestHardMaxBackpressurePublic: with Options.HardMaxWorkers the
// pre-elastic semantics hold through the public API — ErrNoSlots at the
// cap, AcquireWait parking until Release, context cancellation honored.
func TestHardMaxBackpressurePublic(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 2, HardMaxWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	var held []qsense.SetHandle
	for i := 0; i < 3; i++ {
		h, err := set.Acquire()
		if err != nil {
			t.Fatalf("acquire %d below the cap: %v", i, err)
		}
		held = append(held, h)
	}
	if _, err := set.Acquire(); !errors.Is(err, qsense.ErrNoSlots) {
		t.Fatalf("acquire past HardMaxWorkers: err = %v, want ErrNoSlots", err)
	}
	if st := set.Stats(); st.ArenaSize != 3 || st.HighWaterWorkers != 3 {
		t.Fatalf("arena/highwater = %d/%d, want 3/3", st.ArenaSize, st.HighWaterWorkers)
	}

	got := make(chan qsense.SetHandle)
	go func() {
		h, err := set.AcquireWait(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- h
	}()
	select {
	case <-got:
		t.Fatal("AcquireWait returned at the hard cap")
	case <-time.After(20 * time.Millisecond):
	}
	held[0].Release()
	select {
	case h := <-got:
		h.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("AcquireWait not woken by Release")
	}
	for _, h := range held[1:] {
		h.Release()
	}
}

// TestHardCapBelowInitial: a hard cap below MaxWorkers lowers the initial
// arena to the cap rather than erroring or exceeding it.
func TestHardCapBelowInitial(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 8, HardMaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	a, err1 := set.Acquire()
	b, err2 := set.Acquire()
	if err1 != nil || err2 != nil {
		t.Fatalf("acquires below cap: %v / %v", err1, err2)
	}
	if _, err := set.Acquire(); !errors.Is(err, qsense.ErrNoSlots) {
		t.Fatalf("err = %v, want ErrNoSlots at cap 2", err)
	}
	if st := set.Stats(); st.ArenaSize != 2 {
		t.Fatalf("ArenaSize = %d, want 2 (cap wins over MaxWorkers)", st.ArenaSize)
	}
	a.Release()
	b.Release()
}

// TestDeprecatedWorkersBeatsHardCap: a legacy fixed-worker caller adding a
// smaller HardMaxWorkers must keep its positional handles in range — the
// Workers contract raises the cap rather than shrinking the arena under it.
func TestDeprecatedWorkersBeatsHardCap(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{Workers: 3, HardMaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for w := 0; w < 3; w++ {
		h := set.Handle(w) // must not panic: slots [0,3) exist
		h.Insert(int64(w))
	}
	if st := set.Stats(); st.ArenaSize != 3 {
		t.Fatalf("ArenaSize = %d, want 3 (Workers wins over the smaller cap)", st.ArenaSize)
	}
	if _, err := set.Acquire(); !errors.Is(err, qsense.ErrNoSlots) {
		t.Fatalf("err = %v, want ErrNoSlots (all slots pinned, cap raised to Workers)", err)
	}
}

// TestPositionalHandleOutsideInitialArenaPanics: with a hard cap below
// MaxWorkers the initial arena shrinks to the cap, and a positional
// Handle(w) beyond it must fail loudly with the contract in the message
// rather than an opaque index panic.
func TestPositionalHandleOutsideInitialArenaPanics(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{MaxWorkers: 8, HardMaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Handle(4) beyond the 2-slot initial arena did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "positional Handle") {
			t.Fatalf("panic %v does not explain the positional contract", r)
		}
	}()
	set.Handle(4)
}

// TestDeprecatedWorkersAloneSizesArenaExactly: Options{Workers: N} with
// nothing else set must produce an arena of exactly N — the paper's fixed
// N, whose C legality and memory bounds a legacy caller computed — not the
// machine default.
func TestDeprecatedWorkersAloneSizesArenaExactly(t *testing.T) {
	set, err := qsense.NewSet(qsense.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if st := set.Stats(); st.ArenaSize != 3 {
		t.Fatalf("ArenaSize = %d with Workers=3 alone, want exactly 3", st.ArenaSize)
	}
}
