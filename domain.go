package qsense

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// Ref is a generation-tagged handle to a node in a Pool — the library's
// replacement for a raw pointer. The zero Ref is nil. Two low tag bits are
// reserved for the data structure (deletion marks and the like), exactly
// as C implementations pack flags into pointer low bits; clear them with
// Untagged before resolving.
//
// Unlike a raw pointer, a Ref to a freed (and possibly reallocated) node
// is detectable: resolving it panics with a use-after-free violation
// instead of reading someone else's memory.
type Ref uint64

// TagBits is the number of low bits of a Ref reserved for structure use.
const TagBits = mem.TagBits

// toMem converts a public Ref to the substrate's representation.
func toMem(r Ref) mem.Ref { return mem.Ref(r) }

// IsNil reports whether r refers to no node (ignoring tag bits).
func (r Ref) IsNil() bool { return mem.Ref(r).IsNil() }

// Untagged returns r with the structure tag bits cleared.
func (r Ref) Untagged() Ref { return Ref(mem.Ref(r).Untagged()) }

// Tag returns the structure tag bits of r.
func (r Ref) Tag() uint64 { return mem.Ref(r).Tag() }

// WithTag returns r with the given tag bits set (existing tags cleared).
func (r Ref) WithTag(tag uint64) Ref { return Ref(mem.Ref(r).WithTag(tag)) }

// Pool is a typed node allocator for custom structures. Alloc hands out
// Refs; Free (usually called by the Domain, not the application) recycles
// the slot and invalidates outstanding Refs. Safe for concurrent use.
type Pool[T any] struct {
	p *mem.Pool[T]
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// MaxNodes bounds the pool; Alloc panics once it is reached
	// (malloc returning NULL). 0 = library default.
	MaxNodes int
	// Name appears in violation messages.
	Name string
}

// NewPool creates an empty pool of T nodes.
func NewPool[T any](opts PoolOptions) *Pool[T] {
	return &Pool[T]{p: mem.NewPool[T](mem.Config{MaxSlots: opts.MaxNodes, Name: opts.Name})}
}

// Alloc returns a fresh node and its Ref. Initialize every field before
// publishing the Ref to other workers.
func (p *Pool[T]) Alloc() (Ref, *T) {
	r, v := p.p.Alloc()
	return Ref(r), v
}

// Get resolves r. It panics with a use-after-free violation if r is stale
// and with a nil-dereference message if r is nil. Tag bits must be cleared
// (Untagged).
func (p *Pool[T]) Get(r Ref) *T { return p.p.Get(mem.Ref(r)) }

// Valid reports whether r currently resolves to a live node.
func (p *Pool[T]) Valid(r Ref) bool { return p.p.Valid(mem.Ref(r)) }

// Free returns r's node to the pool directly — only for nodes that were
// never reachable by other workers (e.g. a lost insertion race); anything
// that was shared goes through Guard.Retire instead.
func (p *Pool[T]) Free(r Ref) { p.p.Free(mem.Ref(r)) }

// Live returns the number of currently allocated nodes.
func (p *Pool[T]) Live() uint64 { return p.p.Stats().Live }

// FreeFunc adapts the pool's Free for NewDomain.
func (p *Pool[T]) FreeFunc() func(Ref) { return func(r Ref) { p.p.Free(mem.Ref(r)) } }

// Era returns the pool's current era — *Pool[T] implements EraSource, so a
// custom structure passes its pool as Options.Era under SchemeIBR.
func (p *Pool[T]) Era() uint64 { return p.p.Era() }

// AdvanceEra increments the pool's era clock and returns the new value.
// The domain drives this; structures normally never call it.
func (p *Pool[T]) AdvanceEra() uint64 { return p.p.AdvanceEra() }

// BirthEra returns the era r's node was allocated in (0 for nil).
func (p *Pool[T]) BirthEra(r Ref) uint64 { return p.p.BirthEra(mem.Ref(r)) }

// Domain manages safe memory reclamation for one custom structure. Create
// with NewDomain; each goroutine leases a Guard with Acquire and returns it
// with Release when done. The guard arena starts at Options.MaxWorkers and
// grows on demand, so concurrent leases are unbounded unless
// Options.HardMaxWorkers caps them. The arena is split into Options.Shards
// independent slot pools (see the package-level "Sharding" section);
// Acquire spreads leases across them by power-of-two-choices, invisibly to
// the Guard API.
type Domain struct {
	d reclaim.Domain
}

// NewDomain builds a reclamation domain for a custom structure. free
// returns a retired node's memory to its pool (Pool.FreeFunc). Options.HPs
// must cover the structure's maximum simultaneous protections per worker.
// Under SchemeIBR, set Options.Era to the structure's pool so era stamps
// reflect true node lifetimes.
func NewDomain(opts Options, free func(Ref)) (*Domain, error) {
	return newDomain(opts, func(r mem.Ref) { free(Ref(r)) }, nil)
}

// newDomain is NewDomain with the era clock injectable from the internal
// layer: the containers pass their structure's own *mem.Pool (which
// implements reclaim.EraSource directly), and that authoritative source
// wins over any Options.Era the caller set — the container's nodes live in
// the container's pool, so only that pool's clock stamps them.
func newDomain(opts Options, free func(mem.Ref), era reclaim.EraSource) (*Domain, error) {
	hps := opts.HPs
	if hps <= 0 {
		hps = 2
	}
	cfg := opts.reclaimConfig(hps, free)
	if era != nil {
		cfg.Era = era
	}
	d, err := reclaim.New(opts.scheme(), cfg)
	if err != nil {
		return nil, err
	}
	return &Domain{d: d}, nil
}

// Acquire leases a guard slot to the calling goroutine, growing the
// domain's arena when every slot is in use — by default it does not fail.
// The scheme's join path runs underneath (epoch adoption, aged-limbo
// reclamation), so guards recycled from earlier workers resume cleanly.
// With Options.HardMaxWorkers set it returns ErrNoSlots at the cap;
// callers may then retry after another goroutine Releases, or use
// AcquireWait to block instead.
func (d *Domain) Acquire() (Guard, error) {
	g, err := d.d.Acquire()
	if err != nil {
		return Guard{}, err
	}
	return Guard{g: g, d: d.d, released: new(atomic.Bool)}, nil
}

// AcquireWait is Acquire that blocks while the arena is exhausted at an
// Options.HardMaxWorkers cap: the caller parks on the domain's waiter
// channel and is woken by the next Release — no ErrNoSlots retry loop
// needed. It returns ctx.Err() if ctx is done before a slot frees; with
// context.Background() it waits indefinitely. On an elastic domain (no
// hard cap) it behaves exactly like Acquire — growth preempts waiting.
func (d *Domain) AcquireWait(ctx context.Context) (Guard, error) {
	g, err := d.d.AcquireWait(ctx)
	if err != nil {
		return Guard{}, err
	}
	return Guard{g: g, d: d.d, released: new(atomic.Bool)}, nil
}

// Guard returns worker w's guard, pinning slot w permanently: it never
// returns to the Acquire pool. The positional range is the INITIAL arena
// only — 0 <= w < Options.Workers when set, else MaxWorkers (clamped to
// any smaller HardMaxWorkers); slots minted by elastic growth belong to
// Acquire, and out-of-range w panics. Each guard must be used by one
// goroutine at a time.
//
// Deprecated: positional guards exist for fixed-worker callers that need
// deterministic worker↔slot assignment (the experiment harness). New code
// should lease guards with Acquire and return them with Guard.Release.
func (d *Domain) Guard(w int) Guard { return Guard{g: d.d.Guard(w), d: d.d} }

// Stats returns a snapshot of the domain's counters.
func (d *Domain) Stats() Stats { return fromReclaimStats(d.d.Stats()) }

// Failed reports whether the domain breached Options.MemoryLimit.
func (d *Domain) Failed() bool { return d.d.Failed() }

// Close stops background machinery and frees every node still awaiting
// reclamation. Call only after all workers have stopped.
func (d *Domain) Close() { d.d.Close() }

// Guard is a worker's reclamation handle — the paper's three-call
// interface (§4.2). Methods must be called only by the owning worker.
// Guards come from Domain.Acquire (leased; call Release when done) or the
// deprecated positional Domain.Guard (pinned; Release is a no-op). The
// zero Guard is invalid.
type Guard struct {
	g        reclaim.Guard
	d        reclaim.Domain
	released *atomic.Bool // nil for pinned (positional) guards
}

// Begin is the paper's manage_qsense_state: call it at a point where the
// worker holds no references to shared nodes, conventionally at the start
// of every structure operation.
func (g Guard) Begin() { g.g.Begin() }

// Protect is the paper's assign_HP: publish slot i as protecting r. After
// Protect returns, re-validate the link r was loaded from and retry the
// operation if it changed — that re-validation is what makes the
// protection sound (§3.2).
func (g Guard) Protect(i int, r Ref) { g.g.Protect(i, mem.Ref(r)) }

// Retire is the paper's free_node_later: hand over a node that has been
// unlinked from the structure; the scheme frees it once no worker can
// hold it.
func (g Guard) Retire(r Ref) { g.g.Retire(mem.Ref(r)) }

// End releases all of this guard's protections; call at the end of an
// operation.
func (g Guard) End() { g.g.ClearHPs() }

// Release returns a leased guard's slot to the domain: protections are
// drained, epoch schemes Leave (the slot stops blocking grace periods and
// QSense's presence scan), and the slot becomes available to other
// goroutines' Acquires. Retired nodes whose grace period has not yet
// elapsed are moved to the domain's orphan list and freed later by other
// workers' reclamation passes (see Stats.OrphanedNodes/AdoptedNodes) — a
// released slot never strands memory, even if it is never leased again.
// Call exactly once, from the owning goroutine, at a
// point where the worker holds no references to shared nodes; the guard
// must not be used afterwards. Extra calls and calls on pinned
// (positional) guards are no-ops.
func (g Guard) Release() {
	if g.released == nil || !g.released.CompareAndSwap(false, true) {
		return
	}
	g.d.Release(g.g)
}

// Leave removes this worker from grace-period accounting while it parks
// (blocking I/O, waiting on a queue) without giving up its slot. Call only
// at a point where the worker holds no references to shared nodes, and
// Join before operating again. On schemes without epoch membership (HP,
// Cadence, RC, None) Leave is a no-op — those schemes never wait on an
// idle worker in the first place.
func (g Guard) Leave() {
	if l, ok := g.g.(reclaim.Leaver); ok {
		l.Leave()
	}
}

// Join re-enters the protocol after Leave: the guard adopts the current
// epoch, and limbo buckets that aged out while away are freed wholesale.
// No-op on schemes without epoch membership.
func (g Guard) Join() {
	if l, ok := g.g.(reclaim.Leaver); ok {
		l.Join()
	}
}
